// Package netstack is the network layer of the simulated node: it binds a
// routing protocol to the MAC, carries data packets hop by hop, dispatches
// control messages, and feeds the metrics collector.
//
// The routing protocol owns every forwarding decision; the stack only
// provides transmit primitives, timers, and delivery/drop accounting, so
// SRP and the four baseline protocols plug in behind one interface.
//
// Parallel-kernel audit (sim's two-phase batching, ROADMAP item 5):
// every event this package schedules stays an unkeyed full barrier. The
// stack's callbacks reach shared state in all directions — the routing
// protocol (which draws the shared sim RNG for jitter), the MAC transmit
// path, the metrics collector, and the pooled control-envelope freelist —
// so none of them satisfy a node-local conflict key. The only keyed
// events in the system are radio-owned end-of-reception callbacks that
// terminate before reaching this layer's mutable state (see
// internal/radio and the mac.OnFrame audit).
package netstack

import (
	"math/rand"

	"slr/internal/mac"
	"slr/internal/metrics"
	"slr/internal/radio"
	"slr/internal/sim"
)

// NodeID identifies a node; it is the radio station id.
type NodeID = radio.NodeID

// Broadcast is the broadcast address.
const Broadcast = radio.Broadcast

// DefaultTTL is the initial TTL of data packets.
const DefaultTTL = 64

// DataPacket is an application (CBR) packet traveling the network.
type DataPacket struct {
	UID uint64
	// Flow is the traffic generator's flow id (1-based); 0 means the
	// packet was injected outside the workload (tests, examples). The
	// metrics collector keys its per-flow ledger on it.
	Flow    uint32
	Src     NodeID
	Dst     NodeID
	Size    int // payload bytes (512 in the paper's workload)
	TTL     int
	Hops    int
	Created sim.Time

	// Route and RouteIdx carry a DSR-style source route when the routing
	// protocol uses one; other protocols leave them empty.
	Route    []NodeID
	RouteIdx int
	// Salvaged counts DSR salvage operations on this packet.
	Salvaged int
}

// Protocol is a routing protocol instance bound to one node.
//
// DropData reasons must come from the canonical vocabulary owned by
// slr/internal/routing/rcommon (the netstack cannot import it — rcommon
// builds on the Node API — so the conformance suite enforces the
// vocabulary instead of the type system).
type Protocol interface {
	// Attach binds the protocol to its node. Called once, before Start.
	Attach(n *Node)
	// Start begins protocol operation (periodic timers etc.).
	Start()
	// OriginateData is invoked when the local application sends pkt.
	OriginateData(pkt *DataPacket)
	// RecvData handles a data packet received from neighbor `from`.
	RecvData(from NodeID, pkt *DataPacket)
	// RecvControl handles a control message received from neighbor
	// `from`. Messages are protocol-defined types.
	RecvControl(from NodeID, msg any)
	// DataFailed reports a data packet the MAC could not deliver to the
	// next hop `to` (retry limit reached) — the link-layer loss
	// detection signal of §V.
	DataFailed(to NodeID, pkt *DataPacket)
	// DataAcked reports a data packet acknowledged by next hop `to`.
	DataAcked(to NodeID, pkt *DataPacket)
	// ControlFailed reports a unicast control message that could not be
	// delivered to `to`.
	ControlFailed(to NodeID, msg any)
}

// controlEnvelope wraps a control message on the air so the stack can
// distinguish it from data and account for its size. Envelopes are pooled
// per node (see newEnvelope): one is recycled when its unicast completes
// (SendOK/SendFailed) or its broadcast leaves the air (BroadcastDone), so
// steady-state hello/update traffic stops allocating a box per send.
type controlEnvelope struct {
	size int
	msg  any
}

// Node is one simulated host: MAC below, routing protocol above.
type Node struct {
	id    NodeID
	sim   *sim.Simulator
	mac   *mac.MAC
	proto Protocol
	mx    *metrics.Collector
	// delivered dedups data packet UIDs that reached this destination
	// (e.g. a retransmitted copy that raced an ACK). UIDs themselves are
	// allocated by the originating side — the traffic generator for
	// workload packets, test harnesses for injected ones — never by the
	// Node.
	delivered map[uint64]struct{}
	// envFree pools controlEnvelope boxes for reuse across control sends.
	envFree []*controlEnvelope
}

// NewNode wires a node together. The caller must register node.MAC() (via
// Mac()) with the radio channel and call Start.
func NewNode(s *sim.Simulator, ch *radio.Channel, id NodeID, proto Protocol, mx *metrics.Collector) *Node {
	n := &Node{
		id:        id,
		sim:       s,
		proto:     proto,
		mx:        mx,
		delivered: make(map[uint64]struct{}),
	}
	n.mac = mac.New(s, ch, id, (*macUpper)(n))
	proto.Attach(n)
	return n
}

// Mac exposes the MAC for channel registration and stats collection.
func (n *Node) Mac() *mac.MAC { return n.mac }

// Start starts the routing protocol.
func (n *Node) Start() { n.proto.Start() }

// Protocol returns the attached routing protocol.
func (n *Node) Protocol() Protocol { return n.proto }

// ID returns the node id.
func (n *Node) ID() NodeID { return n.id }

// Now returns the current virtual time.
func (n *Node) Now() sim.Time { return n.sim.Now() }

// Rand returns the simulation RNG.
func (n *Node) Rand() *rand.Rand { return n.sim.Rand() }

// After schedules fn on the simulation clock.
func (n *Node) After(d sim.Time, fn func()) sim.Timer { return n.sim.After(d, fn) }

// RescheduleAfter re-arms t to fire fn d from now, reusing its queue node
// when t is still pending.
func (n *Node) RescheduleAfter(t sim.Timer, d sim.Time, fn func()) sim.Timer {
	return n.sim.RescheduleAfter(t, d, fn)
}

// Cancel cancels a scheduled event; stale and zero timers are ignored.
func (n *Node) Cancel(t sim.Timer) { n.sim.Cancel(t) }

// Metrics returns the run's collector.
func (n *Node) Metrics() *metrics.Collector { return n.mx }

// SendData hands an application packet to the routing protocol.
func (n *Node) SendData(pkt *DataPacket) {
	n.mx.Sent(pkt.Flow)
	n.proto.OriginateData(pkt)
}

// ForwardData transmits pkt to neighbor `to` over the MAC with ARQ. The
// protocol hears back via DataAcked or DataFailed.
func (n *Node) ForwardData(to NodeID, pkt *DataPacket) {
	n.mac.Send(to, pkt.Size+dataHeaderSize, pkt)
}

// dataHeaderSize approximates the IP-style network header on data packets.
const dataHeaderSize = 20

// newEnvelope takes a pooled envelope or allocates one.
func (n *Node) newEnvelope(size int, msg any) *controlEnvelope {
	if k := len(n.envFree); k > 0 {
		e := n.envFree[k-1]
		n.envFree[k-1] = nil
		n.envFree = n.envFree[:k-1]
		e.size, e.msg = size, msg
		return e
	}
	return &controlEnvelope{size: size, msg: msg}
}

// freeEnvelope recycles an envelope whose send completed. The wrapped
// message is not pooled: receivers may hold it past delivery (e.g. a
// forwarded RREP), only the box is dead.
func (n *Node) freeEnvelope(e *controlEnvelope) {
	e.msg = nil
	n.envFree = append(n.envFree, e)
}

// BroadcastControl transmits a control message to all neighbors. Control
// packets jump the data queue, as in the ns-2/GloMoSim priority interface
// queue used by the paper's evaluation.
func (n *Node) BroadcastControl(size int, msg any) {
	n.mx.Control(size)
	n.mac.BroadcastPriority(size, n.newEnvelope(size, msg))
}

// UnicastControl transmits a control message to one neighbor with ARQ and
// priority over data.
func (n *Node) UnicastControl(to NodeID, size int, msg any) {
	n.mx.Control(size)
	n.mac.SendPriority(to, size, n.newEnvelope(size, msg))
}

// DeliverLocal records the arrival of pkt at its destination. Duplicate
// UIDs (e.g. a retransmitted copy that raced an ACK) count once.
func (n *Node) DeliverLocal(pkt *DataPacket) {
	if _, dup := n.delivered[pkt.UID]; dup {
		return
	}
	n.delivered[pkt.UID] = struct{}{}
	now := n.sim.Now()
	n.mx.Delivered(pkt.Flow, now, now-pkt.Created, pkt.Hops)
}

// DropData records a routing-layer drop of pkt.
func (n *Node) DropData(pkt *DataPacket, reason string) {
	n.mx.Drop(reason)
}

// macUpper adapts Node to the mac.UpperLayer interface without exposing
// those methods on Node's public API.
type macUpper Node

var _ mac.UpperLayer = (*macUpper)(nil)

func (u *macUpper) Deliver(from radio.NodeID, payload any) {
	n := (*Node)(u)
	switch p := payload.(type) {
	case *DataPacket:
		n.proto.RecvData(from, p)
	case *controlEnvelope:
		n.proto.RecvControl(from, p.msg)
	}
}

func (u *macUpper) SendFailed(to radio.NodeID, payload any) {
	n := (*Node)(u)
	switch p := payload.(type) {
	case *DataPacket:
		n.proto.DataFailed(to, p)
	case *controlEnvelope:
		n.proto.ControlFailed(to, p.msg)
		n.freeEnvelope(p)
	}
}

func (u *macUpper) SendOK(to radio.NodeID, payload any) {
	n := (*Node)(u)
	switch p := payload.(type) {
	case *DataPacket:
		n.proto.DataAcked(to, p)
	case *controlEnvelope:
		// Control deliveries need no confirmation; the box is done.
		n.freeEnvelope(p)
	}
}

// BroadcastDone implements mac.BroadcastDone: a broadcast control frame
// has left the air and every reception of it has completed, so its
// envelope can be recycled.
func (u *macUpper) BroadcastDone(payload any) {
	if e, ok := payload.(*controlEnvelope); ok {
		(*Node)(u).freeEnvelope(e)
	}
}

// BaseProtocol provides no-op implementations of the optional Protocol
// callbacks so protocols only implement what they use.
type BaseProtocol struct{}

// DataAcked is a no-op.
func (BaseProtocol) DataAcked(NodeID, *DataPacket) {}

// ControlFailed is a no-op.
func (BaseProtocol) ControlFailed(NodeID, any) {}

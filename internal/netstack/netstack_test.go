package netstack

import (
	"testing"
	"time"

	"slr/internal/geo"
	"slr/internal/metrics"
	"slr/internal/mobility"
	"slr/internal/radio"
	"slr/internal/sim"
)

// hopProto is a trivial protocol that forwards every data packet to a fixed
// next hop and records control messages; it exercises the stack plumbing.
type hopProto struct {
	BaseProtocol
	n        *Node
	nextHop  map[NodeID]NodeID // dst -> next hop
	control  []any
	failed   []*DataPacket
	acked    []*DataPacket
	started  bool
	ctlFails []any
}

func (p *hopProto) Attach(n *Node) { p.n = n }
func (p *hopProto) Start()         { p.started = true }

func (p *hopProto) OriginateData(pkt *DataPacket) { p.route(pkt) }

func (p *hopProto) RecvData(from NodeID, pkt *DataPacket) {
	pkt.Hops++
	if pkt.Dst == p.n.ID() {
		p.n.DeliverLocal(pkt)
		return
	}
	pkt.TTL--
	if pkt.TTL <= 0 {
		p.n.DropData(pkt, "ttl-expired")
		return
	}
	p.route(pkt)
}

func (p *hopProto) route(pkt *DataPacket) {
	next, ok := p.nextHop[pkt.Dst]
	if !ok {
		p.n.DropData(pkt, "no-route")
		return
	}
	p.n.ForwardData(next, pkt)
}

func (p *hopProto) RecvControl(from NodeID, msg any)      { p.control = append(p.control, msg) }
func (p *hopProto) DataFailed(to NodeID, pkt *DataPacket) { p.failed = append(p.failed, pkt) }
func (p *hopProto) DataAcked(to NodeID, pkt *DataPacket)  { p.acked = append(p.acked, pkt) }
func (p *hopProto) ControlFailed(to NodeID, msg any)      { p.ctlFails = append(p.ctlFails, msg) }

type world struct {
	sim   *sim.Simulator
	ch    *radio.Channel
	nodes []*Node
	prots []*hopProto
	mx    *metrics.Collector
}

func buildWorld(t *testing.T, xs ...float64) *world {
	t.Helper()
	s := sim.New(7)
	p := radio.DefaultParams()
	p.Range = 100
	ch := radio.NewChannel(s, p)
	mx := metrics.NewCollector()
	w := &world{sim: s, ch: ch, mx: mx}
	for i, x := range xs {
		pr := &hopProto{nextHop: make(map[NodeID]NodeID)}
		n := NewNode(s, ch, NodeID(i), pr, mx)
		ch.Register(NodeID(i), &mobility.Static{At: geo.Point{X: x}}, n.Mac())
		n.Start()
		w.nodes = append(w.nodes, n)
		w.prots = append(w.prots, pr)
	}
	return w
}

func TestMultiHopDataDelivery(t *testing.T) {
	w := buildWorld(t, 0, 80, 160, 240)
	// Static route 0 -> 1 -> 2 -> 3.
	w.prots[0].nextHop[3] = 1
	w.prots[1].nextHop[3] = 2
	w.prots[2].nextHop[3] = 3
	pkt := &DataPacket{UID: 1, Src: 0, Dst: 3, Size: 512, TTL: DefaultTTL, Created: w.sim.Now()}
	w.nodes[0].SendData(pkt)
	w.sim.Run()
	if w.mx.DataSent != 1 || w.mx.DataRecv != 1 {
		t.Fatalf("sent/recv = %d/%d, want 1/1", w.mx.DataSent, w.mx.DataRecv)
	}
	if w.mx.MeanHops() != 3 {
		t.Fatalf("hops = %v, want 3", w.mx.MeanHops())
	}
	if w.mx.MeanLatency() <= 0 || w.mx.MeanLatency() > 0.1 {
		t.Fatalf("latency = %v s, implausible", w.mx.MeanLatency())
	}
}

func TestDuplicateDeliveryCountsOnce(t *testing.T) {
	w := buildWorld(t, 0, 80)
	w.prots[0].nextHop[1] = 1
	pkt := &DataPacket{UID: 9, Src: 0, Dst: 1, Size: 100, TTL: 4, Created: w.sim.Now()}
	w.nodes[0].SendData(pkt)
	w.sim.Run()
	// Simulate a duplicate arriving later.
	w.nodes[1].DeliverLocal(pkt)
	if w.mx.DataRecv != 1 {
		t.Fatalf("DataRecv = %d, want 1 (dedup)", w.mx.DataRecv)
	}
}

func TestNoRouteDrop(t *testing.T) {
	w := buildWorld(t, 0, 80)
	pkt := &DataPacket{UID: 2, Src: 0, Dst: 1, Size: 100, TTL: 4, Created: w.sim.Now()}
	w.nodes[0].SendData(pkt)
	w.sim.Run()
	if w.mx.DataDrops["no-route"] != 1 {
		t.Fatalf("drops = %v", w.mx.DataDrops)
	}
}

func TestTTLExpiry(t *testing.T) {
	// Two nodes forwarding to each other: TTL must kill the packet.
	w := buildWorld(t, 0, 80)
	w.prots[0].nextHop[5] = 1
	w.prots[1].nextHop[5] = 0
	pkt := &DataPacket{UID: 3, Src: 0, Dst: 5, Size: 100, TTL: 6, Created: w.sim.Now()}
	w.nodes[0].SendData(pkt)
	w.sim.Run()
	if w.mx.DataDrops["ttl-expired"] != 1 {
		t.Fatalf("drops = %v, want one ttl-expired", w.mx.DataDrops)
	}
}

func TestControlBroadcastAndAccounting(t *testing.T) {
	w := buildWorld(t, 0, 80, 160)
	w.nodes[0].BroadcastControl(48, "hello-msg")
	w.sim.Run()
	if len(w.prots[1].control) != 1 || w.prots[1].control[0] != "hello-msg" {
		t.Fatalf("node1 control = %v", w.prots[1].control)
	}
	// Node 2 is out of range of node 0.
	if len(w.prots[2].control) != 0 {
		t.Fatalf("node2 control = %v, want none", w.prots[2].control)
	}
	if w.mx.ControlTx != 1 || w.mx.ControlBytes != 48 {
		t.Fatalf("control accounting = %d/%d", w.mx.ControlTx, w.mx.ControlBytes)
	}
}

func TestUnicastControlFailureCallback(t *testing.T) {
	w := buildWorld(t, 0, 500)
	w.nodes[0].UnicastControl(1, 24, "rrep")
	w.sim.Run()
	if len(w.prots[0].ctlFails) != 1 || w.prots[0].ctlFails[0] != "rrep" {
		t.Fatalf("ctlFails = %v", w.prots[0].ctlFails)
	}
}

func TestDataFailedCallback(t *testing.T) {
	w := buildWorld(t, 0, 80)
	w.prots[0].nextHop[7] = 9 // next hop that does not exist in range
	// Register an unreachable station 9 far away? Simpler: next hop 1 but
	// move it out of range is impossible with statics; use missing id:
	// MAC sends to id 9 which is unregistered — no one ACKs, retries
	// exhaust, DataFailed fires.
	pkt := &DataPacket{UID: 4, Src: 0, Dst: 7, Size: 100, TTL: 4, Created: w.sim.Now()}
	w.nodes[0].SendData(pkt)
	w.sim.Run()
	if len(w.prots[0].failed) != 1 {
		t.Fatalf("failed = %v, want 1 packet", w.prots[0].failed)
	}
}

func TestDataAckedCallback(t *testing.T) {
	w := buildWorld(t, 0, 80)
	w.prots[0].nextHop[1] = 1
	pkt := &DataPacket{UID: 5, Src: 0, Dst: 1, Size: 100, TTL: 4, Created: w.sim.Now()}
	w.nodes[0].SendData(pkt)
	w.sim.Run()
	if len(w.prots[0].acked) != 1 {
		t.Fatalf("acked = %v, want 1 packet", w.prots[0].acked)
	}
}

func TestTimersViaNode(t *testing.T) {
	w := buildWorld(t, 0)
	fired := false
	w.nodes[0].After(3*time.Second, func() { fired = true })
	w.sim.Run()
	if !fired {
		t.Fatal("timer did not fire")
	}
	if w.nodes[0].Now() != 3*time.Second {
		t.Fatalf("Now = %v", w.nodes[0].Now())
	}
}

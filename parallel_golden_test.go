// Serial-vs-parallel replay gate for the two-phase kernel. SetWorkers is
// documented as byte-identical per seed for any worker count — not "close",
// identical — so this test replays a small sweep of every protocol through
// the full scenario stack (mobility, radio, MAC, routing, traffic, metrics)
// at workers 1, 2, and 4 and diffs the complete JSONL record streams. Any
// divergence in conflict keying, window partitioning, staged-effect merge
// order, or seq assignment shows up here as a one-line diff.
package slr_test

import (
	"bytes"
	"os"
	"testing"

	"slr/internal/experiments"
	"slr/internal/runner"
	"slr/internal/scenario"
)

// parallelReplay runs one small sweep of proto with the given kernel
// worker count and returns the full JSONL stream.
func parallelReplay(t *testing.T, proto scenario.ProtocolName, workers int) []byte {
	t.Helper()
	var jobs []runner.Job
	for _, pauseFrac := range []float64{0, 1} {
		p := experiments.Small.Params(proto, pauseFrac, 1)
		p.Workers = workers
		for _, j := range runner.TrialJobs(p, 1) {
			j.Index = len(jobs)
			j.PauseFrac = pauseFrac
			jobs = append(jobs, j)
		}
	}
	var buf bytes.Buffer
	em := runner.NewJSONL(&buf)
	if _, err := runner.Run(jobs, runner.Options{Workers: 1, Emitters: []runner.Emitter{em}}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestParallelReplayByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack replay sweep skipped in -short")
	}
	for _, proto := range scenario.AllProtocols {
		t.Run(string(proto), func(t *testing.T) {
			serial := parallelReplay(t, proto, 1)
			for _, w := range []int{2, 4} {
				got := parallelReplay(t, proto, w)
				if bytes.Equal(got, serial) {
					continue
				}
				gl := bytes.Split(got, []byte("\n"))
				sl := bytes.Split(serial, []byte("\n"))
				for i := 0; i < len(gl) && i < len(sl); i++ {
					if !bytes.Equal(gl[i], sl[i]) {
						t.Fatalf("workers=%d diverged from serial at line %d:\nserial:   %.200s\nparallel: %.200s",
							w, i+1, sl[i], gl[i])
					}
				}
				t.Fatalf("workers=%d diverged from serial: %d lines vs %d", w, len(gl), len(sl))
			}
		})
	}
}

// TestParallelReplayMatchesGolden pins the parallel path against the same
// frozen stream the serial OLSR golden uses: not just serial==parallel
// today, but both equal to the committed bytes.
func TestParallelReplayMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack replay sweep skipped in -short")
	}
	var jobs []runner.Job
	for _, pauseFrac := range []float64{0, 1} {
		p := experiments.Small.Params(scenario.OLSR, pauseFrac, 1)
		p.Workers = 4
		for _, j := range runner.TrialJobs(p, 2) {
			j.Index = len(jobs)
			j.PauseFrac = pauseFrac
			jobs = append(jobs, j)
		}
	}
	var buf bytes.Buffer
	em := runner.NewJSONL(&buf)
	if _, err := runner.Run(jobs, runner.Options{Workers: 1, Emitters: []runner.Emitter{em}}); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(olsrGolden)
	if err != nil {
		t.Fatalf("missing golden (run TestOLSRGoldenJSONL with -update first): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("workers=4 OLSR stream drifted from the serial golden")
	}
}

// Per-seed byte-identity pin for OLSR's JSONL output. The OLSR recompute
// path is the repo's profiled hot spot and gets restructured for large N;
// any behavioral drift there (BFS tie-breaks, MPR selection, expiry
// handling) would silently change every OLSR result. This test freezes the
// full record stream — metrics, histograms, drop reasons — for a small
// sweep across the mobility extremes, so optimizations must prove
// themselves byte-identical per seed.
//
// Regenerate (only for a documented behavior change, like the PR 3
// queue-full rename): go test -run TestOLSRGoldenJSONL -update .
package slr_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"slr/internal/experiments"
	"slr/internal/runner"
	"slr/internal/scenario"
)

var update = flag.Bool("update", false, "rewrite golden files")

const olsrGolden = "testdata/olsr-small.golden.jsonl"

func TestOLSRGoldenJSONL(t *testing.T) {
	// The mobility extremes stress different recompute paths: pause 0
	// (constant motion, link churn on every hello round) and full pause
	// (static topology, where the expiry-horizon skip should carry the
	// whole steady state).
	var jobs []runner.Job
	for _, pauseFrac := range []float64{0, 1} {
		p := experiments.Small.Params(scenario.OLSR, pauseFrac, 1)
		for _, j := range runner.TrialJobs(p, 2) {
			j.Index = len(jobs)
			j.PauseFrac = pauseFrac
			jobs = append(jobs, j)
		}
	}
	var buf bytes.Buffer
	em := runner.NewJSONL(&buf)
	if _, err := runner.Run(jobs, runner.Options{Workers: 1, Emitters: []runner.Emitter{em}}); err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(olsrGolden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(olsrGolden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", olsrGolden, buf.Len())
		return
	}
	want, err := os.ReadFile(olsrGolden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		got := buf.Bytes()
		gl := bytes.Split(got, []byte("\n"))
		wl := bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("OLSR JSONL drifted from golden at line %d:\ngot:  %.200s\nwant: %.200s", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("OLSR JSONL drifted from golden: got %d lines, want %d", len(gl), len(wl))
	}
}

// Benchmarks regenerating the paper's evaluation artifacts (§V): one bench
// per table and figure, plus ablations of the design choices called out in
// DESIGN.md and micro-benchmarks of the label machinery.
//
// Scenario benches run the Small experiment scale (30 nodes, 14 flows,
// 120 s) so `go test -bench=.` finishes in minutes; the shapes match the
// mid/full scales driven by cmd/experiments. Each bench reports the paper's
// metric for that figure via b.ReportMetric, so the bench output doubles as
// a results table.
package slr_test

import (
	"fmt"
	"io"
	"math"
	"strings"
	"testing"
	"time"

	"slr/internal/experiments"
	"slr/internal/frac"
	"slr/internal/geo"
	"slr/internal/label"
	"slr/internal/scenario"
	"slr/internal/sim"
)

// benchPause is the mobility point benches run at: constant motion, the
// paper's hardest case.
const benchPause = 0

func benchParams(proto scenario.ProtocolName, seed int64) scenario.Params {
	return experiments.Small.Params(proto, benchPause, seed)
}

// runPoint runs b.N trials of one grid point and reports the mean of the
// given metrics.
func runPoint(b *testing.B, p scenario.Params, report map[string]func(scenario.Result) float64) {
	b.Helper()
	sums := make(map[string]float64, len(report))
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		r := scenario.Run(p)
		for name, get := range report {
			sums[name] += get(r)
		}
	}
	for name, sum := range sums {
		b.ReportMetric(sum/float64(b.N), name)
	}
}

// BenchmarkTable1 regenerates Table I: delivery ratio, network load, and
// latency per protocol (averaged over trials at the bench pause point).
func BenchmarkTable1(b *testing.B) {
	for _, proto := range scenario.AllProtocols {
		b.Run(string(proto), func(b *testing.B) {
			runPoint(b, benchParams(proto, 1), map[string]func(scenario.Result) float64{
				"deliv-ratio": func(r scenario.Result) float64 { return r.DeliveryRatio },
				"net-load":    func(r scenario.Result) float64 { return r.NetworkLoad },
				"latency-s":   func(r scenario.Result) float64 { return r.Latency },
			})
		})
	}
}

// BenchmarkFig3MACDrops regenerates Fig. 3: mean MAC-layer drops per node.
func BenchmarkFig3MACDrops(b *testing.B) {
	for _, proto := range scenario.AllProtocols {
		b.Run(string(proto), func(b *testing.B) {
			runPoint(b, benchParams(proto, 1), map[string]func(scenario.Result) float64{
				"mac-drops": func(r scenario.Result) float64 { return r.MACDrops },
			})
		})
	}
}

// BenchmarkFig4Delivery regenerates Fig. 4: delivery ratio.
func BenchmarkFig4Delivery(b *testing.B) {
	for _, proto := range scenario.AllProtocols {
		b.Run(string(proto), func(b *testing.B) {
			runPoint(b, benchParams(proto, 1), map[string]func(scenario.Result) float64{
				"deliv-ratio": func(r scenario.Result) float64 { return r.DeliveryRatio },
			})
		})
	}
}

// BenchmarkFig5NetLoad regenerates Fig. 5: control packets per delivered
// data packet.
func BenchmarkFig5NetLoad(b *testing.B) {
	for _, proto := range scenario.AllProtocols {
		b.Run(string(proto), func(b *testing.B) {
			runPoint(b, benchParams(proto, 1), map[string]func(scenario.Result) float64{
				"net-load": func(r scenario.Result) float64 { return r.NetworkLoad },
			})
		})
	}
}

// BenchmarkFig6Latency regenerates Fig. 6: mean end-to-end data latency.
func BenchmarkFig6Latency(b *testing.B) {
	for _, proto := range scenario.AllProtocols {
		b.Run(string(proto), func(b *testing.B) {
			runPoint(b, benchParams(proto, 1), map[string]func(scenario.Result) float64{
				"latency-s": func(r scenario.Result) float64 { return r.Latency },
			})
		})
	}
}

// BenchmarkFig7SeqNo regenerates Fig. 7: average node sequence number for
// the three sequence-number protocols (SRP must report exactly 0).
func BenchmarkFig7SeqNo(b *testing.B) {
	for _, proto := range []scenario.ProtocolName{scenario.SRP, scenario.LDR, scenario.AODV} {
		b.Run(string(proto), func(b *testing.B) {
			runPoint(b, benchParams(proto, 1), map[string]func(scenario.Result) float64{
				"avg-seqno": func(r scenario.Result) float64 { return r.AvgSeqno },
			})
		})
	}
}

// srpVariant runs SRP with protocol-parameter overrides (the same
// "protocol_params" map a scenario spec carries), reporting the headline
// metrics, for the ablation benches.
func srpVariant(b *testing.B, params map[string]float64) {
	b.Helper()
	p := benchParams(scenario.SRP, 1)
	p.ProtoParams = params
	runPoint(b, p, map[string]func(scenario.Result) float64{
		"deliv-ratio": func(r scenario.Result) float64 { return r.DeliveryRatio },
		"net-load":    func(r scenario.Result) float64 { return r.NetworkLoad },
		"avg-seqno":   func(r scenario.Result) float64 { return r.AvgSeqno },
		"max-denom":   func(r scenario.Result) float64 { return float64(r.MaxDenom) },
	})
}

// BenchmarkAblationBaseline is SRP as published, for comparison with the
// other Ablation* benches.
func BenchmarkAblationBaseline(b *testing.B) { srpVariant(b, nil) }

// BenchmarkAblationHello enables the protocol-complete periodic Hello
// advertisements the paper's simulations run without.
func BenchmarkAblationHello(b *testing.B) {
	srpVariant(b, map[string]float64{"hello_interval_seconds": 2})
}

// BenchmarkAblationNextElementOnly removes the dense split: labels may only
// take the advertisement's next-element, which breaks the request bound on
// out-of-order paths and forces sequence-number resets — SRP degraded
// toward an integer-ordering protocol.
func BenchmarkAblationNextElementOnly(b *testing.B) {
	srpVariant(b, map[string]float64{"next_element_only": 1})
}

// BenchmarkAblationFarey swaps the mediant for the Stern-Brocot simplest
// fraction (§VI future work): same behaviour, far smaller denominators.
func BenchmarkAblationFarey(b *testing.B) {
	srpVariant(b, map[string]float64{"farey": 1})
}

// BenchmarkAblationNoLie disables the §V understated-RREQ heuristic.
func BenchmarkAblationNoLie(b *testing.B) {
	srpVariant(b, map[string]float64{"use_lie": 0})
}

// BenchmarkAblationNoCache disables the packet cache: MAC-dropped data is
// lost instead of resent on a repaired route.
func BenchmarkAblationNoCache(b *testing.B) {
	srpVariant(b, map[string]float64{"use_packet_cache": 0})
}

// BenchmarkAblationNoRing disables expanding-ring search: every discovery
// floods the whole network immediately.
func BenchmarkAblationNoRing(b *testing.B) {
	srpVariant(b, map[string]float64{"ttl_0": 35, "ttl_1": 35, "ttl_2": 35})
}

// --- Large-N tier -----------------------------------------------------

// largeNParams builds a grid point at the large-N tier: the paper's node
// density (~76 nodes/km², §V) on a square terrain sized for the node
// count, with a short sim horizon so one trial stays benchable. This is
// the in-test counterpart of examples/scenarios/manhattan-5000.json and
// manhattan-20000.json.
func largeNParams(proto scenario.ProtocolName, nodes int) scenario.Params {
	return largeNParamsDur(proto, nodes, 10*time.Second)
}

func largeNParamsDur(proto scenario.ProtocolName, nodes int, dur sim.Time) scenario.Params {
	side := 1000 * math.Sqrt(float64(nodes)/75.8)
	s := experiments.Scale{
		Name:  "large",
		Nodes: nodes, Terrain: geo.Terrain{Width: side, Height: side},
		Range: 275, Flows: 50, Duration: dur, Trials: 1,
	}
	return s.Params(proto, benchPause, 1)
}

// BenchmarkLargeN runs the large-N tier (ROADMAP item 1): SRP and OLSR at
// thousands of nodes, a short horizon per trial. OLSR here exercises the
// incremental-recompute path at scale — before it, this bench was
// intractable at N=5000. The N=20000 tier runs a halved horizon (5 s) to
// bound wall time; it exists to keep the ladder scheduler and the grid's
// epoch position refresh honest at the scale the 50k-node goal needs.
func BenchmarkLargeN(b *testing.B) {
	for _, tier := range []struct {
		n   int
		dur sim.Time
	}{{2000, 10 * time.Second}, {5000, 10 * time.Second}, {20000, 5 * time.Second}} {
		for _, proto := range []scenario.ProtocolName{scenario.SRP, scenario.OLSR} {
			b.Run(fmt.Sprintf("%s/N=%d", proto, tier.n), func(b *testing.B) {
				runPoint(b, largeNParamsDur(proto, tier.n, tier.dur), map[string]func(scenario.Result) float64{
					"deliv-ratio": func(r scenario.Result) float64 { return r.DeliveryRatio },
				})
			})
		}
	}
}

// BenchmarkParallelLargeN measures the opt-in parallel kernel (ROADMAP
// item 5) against its own serial baseline: the same large-N point at
// workers 1/2/4, output byte-identical by construction, so the only
// thing moving is wall clock. Traffic is denser than BenchmarkLargeN
// (200 flows at N=5000) because the parallel-safe work is collision- and
// overhear-driven end-of-reception handling: dense traffic widens the
// same-timestamp keyed windows the executor fans out. The N=5000 tier is
// where workers pay off today (~10% at 4 workers); the N=20000/1s tier
// is tracked honestly even though barrier events still fragment its
// windows — the gap is the measure of how much of the MAC/routing hot
// path remains to be keyed.
func BenchmarkParallelLargeN(b *testing.B) {
	for _, tier := range []struct {
		n, flows int
		dur      sim.Time
	}{{5000, 200, 4 * time.Second}, {20000, 100, time.Second}} {
		for _, proto := range []scenario.ProtocolName{scenario.SRP, scenario.OLSR} {
			for _, w := range []int{1, 2, 4} {
				b.Run(fmt.Sprintf("%s/N=%d/workers=%d", proto, tier.n, w), func(b *testing.B) {
					p := largeNParamsDur(proto, tier.n, tier.dur)
					p.Traffic.Flows = tier.flows
					p.Workers = w
					runPoint(b, p, map[string]func(scenario.Result) float64{
						"deliv-ratio": func(r scenario.Result) float64 { return r.DeliveryRatio },
					})
				})
			}
		}
	}
}

// --- Micro-benchmarks of the label machinery --------------------------

// BenchmarkMediant measures the mediant split (Eq. 1).
func BenchmarkMediant(b *testing.B) {
	lo, hi := frac.Zero, frac.One
	for i := 0; i < b.N; i++ {
		m, ok := frac.Mediant(lo, hi)
		if !ok {
			lo, hi = frac.Zero, frac.One
			continue
		}
		hi = m
	}
}

// BenchmarkSternBrocot measures the simplest-fraction interpolation (§VI).
func BenchmarkSternBrocot(b *testing.B) {
	lo := frac.MustNew(415, 943)
	hi := frac.MustNew(416, 943)
	for i := 0; i < b.N; i++ {
		if _, ok := frac.Between(lo, hi); !ok {
			b.Fatal("between failed")
		}
	}
}

// BenchmarkOrderingCompare measures the OC precedence test (Definition 5).
func BenchmarkOrderingCompare(b *testing.B) {
	x := label.Order{SN: 3, FD: frac.MustNew(5, 8)}
	y := label.Order{SN: 3, FD: frac.MustNew(3, 5)}
	sink := false
	for i := 0; i < b.N; i++ {
		sink = x.Precedes(y) != sink
	}
	_ = sink
}

// BenchmarkSimulatorEvents measures raw event-loop throughput.
func BenchmarkSimulatorEvents(b *testing.B) {
	s := sim.New(1)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			s.After(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	s.After(0, tick)
	s.Run()
}

// BenchmarkScenarioSecond measures simulation cost per simulated second of
// the full stack (SRP, 30 nodes, 14 flows).
func BenchmarkScenarioSecond(b *testing.B) {
	p := benchParams(scenario.SRP, 1)
	p.Duration = sim.Time(b.N) * time.Second
	b.ResetTimer()
	scenario.Run(p)
}

// TestSweepAPISmoke exercises the experiments API end to end on a tiny
// grid, keeping the harness honest between full sweeps.
func TestSweepAPISmoke(t *testing.T) {
	scale := experiments.Small
	scale.Trials = 1
	scale.Nodes = 12
	scale.Flows = 3
	scale.Duration = 15 * time.Second
	grid := experiments.Sweep(scale, []scenario.ProtocolName{scenario.SRP}, 1, io.Discard)
	report := grid.Report()
	for _, want := range []string{"Table I", "Fig. 4", "Fig. 7", "Shape checks"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}
